#!/usr/bin/env python
"""Benchmark: many-core scenario replay under the hierarchical manager.

The flat coordinated manager's global min-plus reduction is the scaling
wall past ~32 cores: its top combines widen with the full LLC
associativity, so per-invocation cost grows superlinearly with the core
count.  This benchmark drives the 64-core S5 "cluster churn" scenario --
whole clusters draining and refilling -- under the hierarchical
``ClusteredManager`` (per-cluster capped reduction trees plus a
second-level combine), times it against the flat incremental manager and
the static baseline, and verifies the single-cluster equivalence contract
(``cluster_size >= ncores`` is bit-identical to the flat manager) on a
16-core replay.  128- and 256-core S7 datapoints (the scaling
experiment's cluster-churn shape with idle gaps) track the next two
doublings, each annotated with a report-only per-stage timing split
(manager decide / curves / reduce, kernel apply / advance) from one extra
``REPRO_PROFILE``-instrumented replay, and every replay records its event
throughput (``events_per_sec`` -- global simulation events retired per
wall-clock second, the struct-of-arrays engine's headline number).
Results land in
``benchmarks/_artifacts/BENCH_scaling.json``: wall-clocks and the
``result_hash`` / ``bit_identical`` fields are enforced by the CI
bench-regression gate (``tools/bench_compare.py``), so both the many-core
perf trajectory and the hierarchy's semantics are pinned.

Usage::

    PYTHONPATH=src python tools/bench_scaling.py \
        [--ncores 64] [--cluster-size 8] [--horizon 512] \
        [--max-slices 12] [--repeats 3] [--s7-ncores 128] [--s7-xl-ncores 256]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))
from _bench_common import (  # noqa: E402
    BENCHMARK_SUBSET,
    add_src_to_path,
    machine_calibration_s,
    run_result_hash,
    runs_bit_identical,
    time_best_of,
    write_bench_artifact,
)

# Small-suite database at the bench fidelity: reuses the CI cache when
# present.  Must be set before repro.experiments.runner imports.
os.environ.setdefault("REPRO_ACCESSES_PER_SET", "400")
add_src_to_path()

from repro.core.managers import StaticBaselineManager, rm2_combined  # noqa: E402
from repro.experiments.runner import get_context  # noqa: E402
from repro.scenarios import cluster_churn  # noqa: E402
from repro.simulation.rma_sim import RMASimulator  # noqa: E402


def _replay(ctx, scenario, manager_factory, max_slices, repeats):
    """Best-of-N wall-clock, final run and simulator of one scenario replay."""
    last = [None]  # only the final repeat's simulator is kept alive

    def make():
        last[0] = sim = RMASimulator(
            ctx.system,
            ctx.db,
            scenario.workload,
            manager_factory(),
            max_slices=max_slices,
            scenario=scenario,
        )
        return sim.run()

    best_s, run = time_best_of(make, repeats)
    return best_s, run, last[0]


def _events_per_sec(sim, best_s: float) -> float:
    """Replay throughput: simulated global events per wall-clock second."""
    return round(sim.events_simulated / best_s, 1) if best_s > 0 else 0.0


def _stage_split(ctx, scenario, manager_factory, max_slices) -> dict:
    """Per-stage seconds of one extra instrumented replay (report-only).

    Runs the replay once more under ``REPRO_PROFILE`` and returns the
    :class:`~repro.util.profiling.StageTimer` breakdown.  Key names carry
    no ``_s`` suffix on purpose: instrumented sub-stage times are noisier
    than the gated end-to-end wall-clocks, so the regression gate ignores
    them -- they are the *where did it go* annotation next to the gated
    *how fast* numbers.
    """
    os.environ["REPRO_PROFILE"] = "1"
    try:
        sim = RMASimulator(
            ctx.system,
            ctx.db,
            scenario.workload,
            manager_factory(),
            max_slices=max_slices,
            scenario=scenario,
        )
        sim.run()
        breakdown = sim.stage_timer.breakdown()
    finally:
        del os.environ["REPRO_PROFILE"]
    return {
        stage.replace(".", "_"): round(seconds, 4)
        for stage, seconds in sorted(breakdown.items())
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ncores", type=int, default=64)
    parser.add_argument("--cluster-size", type=int, default=8)
    parser.add_argument(
        "--horizon", type=int, default=512, help="scenario horizon in intervals (total work)"
    )
    parser.add_argument("--max-slices", type=int, default=12)
    # Best-of-3: replay walls at this scale sit near the machine-noise
    # floor, and one extra repeat keeps the gated minima stable.
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--equivalence-ncores",
        type=int,
        default=16,
        help="system size of the single-cluster identity check",
    )
    parser.add_argument(
        "--s7-ncores", type=int, default=128, help="system size of the S7 scaling datapoint"
    )
    parser.add_argument(
        "--s7-xl-ncores", type=int, default=256, help="system size of the extra-large S7 datapoint"
    )
    args = parser.parse_args(argv)

    report: dict = {
        "benchmark": "scaling",
        "ncores": args.ncores,
        "cluster_size": args.cluster_size,
        "horizon_intervals": args.horizon,
        "max_slices": args.max_slices,
        "accesses_per_set": int(os.environ["REPRO_ACCESSES_PER_SET"]),
        "repeats": args.repeats,
        "calibration_s": round(machine_calibration_s(), 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }

    # ---- the many-core point: 64-core S5 under RM2-clustered ---------------
    ctx = get_context(args.ncores, names=BENCHMARK_SUBSET)
    scenario = cluster_churn(
        f"scaling-{args.ncores}core",
        args.ncores,
        BENCHMARK_SUBSET,
        cluster_size=args.cluster_size,
        cycles=max(4, args.ncores // 8),
        horizon_intervals=args.horizon,
        seed=args.seed,
    )
    clus_s, clus_run, clus_sim = _replay(
        ctx,
        scenario,
        lambda: rm2_combined(cluster_size=args.cluster_size),
        args.max_slices,
        args.repeats,
    )
    flat_s, flat_run, _ = _replay(
        ctx, scenario, lambda: rm2_combined(incremental=True), args.max_slices, args.repeats
    )
    base_s, base_run, base_sim = _replay(
        ctx, scenario, StaticBaselineManager, args.max_slices, args.repeats
    )
    gap_pct = (
        100.0 * (clus_run.total_energy_nj - flat_run.total_energy_nj)
        / flat_run.total_energy_nj
    )
    report["manycore"] = {
        "scenario": scenario.name,
        "clustered_s": round(clus_s, 4),
        "flat_s": round(flat_s, 4),
        "baseline_s": round(base_s, 4),
        # Informational ratio (the gated signals are the wall-clocks above
        # and the exact result hashes below).
        "flat_over_clustered": round(flat_s / clus_s, 3),
        "energy_gap_pct": round(gap_pct, 4),
        "clustered_rma_instr_per_invocation": round(
            clus_run.rma_instructions / max(1, clus_run.rma_invocations), 1
        ),
        "flat_rma_instr_per_invocation": round(
            flat_run.rma_instructions / max(1, flat_run.rma_invocations), 1
        ),
        # Replay throughput (informational; the gated signals are the
        # wall-clocks and hashes).
        "events": int(clus_sim.events_simulated),
        "events_per_sec": _events_per_sec(clus_sim, clus_s),
        "baseline_events_per_sec": _events_per_sec(base_sim, base_s),
        "result_hash": run_result_hash(clus_run),
        "rma_invocations": int(clus_run.rma_invocations),
        # Nested so the gate's exact-match walk sees a leaf literally named
        # "result_hash": flat-manager drift at 64 cores must fail CI too.
        "flat": {"result_hash": run_result_hash(flat_run)},
    }
    print(
        f"{args.ncores}-core S5: clustered {clus_s:6.3f}s  flat {flat_s:6.3f}s  "
        f"({flat_s / clus_s:4.2f}x)  energy gap {gap_pct:+.3f}%  "
        f"{report['manycore']['events_per_sec']:,.0f} events/s"
    )

    # ---- the scaling ladder: 128- and 256-core S7 under RM2-clustered ------
    for s7_n, s7_key in ((args.s7_ncores, "s7_128core"), (args.s7_xl_ncores, "s7_256core")):
        s7_ctx = get_context(s7_n, names=BENCHMARK_SUBSET)
        s7_scenario = cluster_churn(
            f"s7-{s7_n}core",
            s7_n,
            BENCHMARK_SUBSET,
            cluster_size=args.cluster_size,
            cycles=max(4, s7_n // 8),
            idle_intervals=1.5,
            horizon_intervals=args.horizon,
            seed=args.seed,
        )
        s7_factory = lambda: rm2_combined(cluster_size=args.cluster_size)  # noqa: E731
        s7_s, s7_run, s7_sim = _replay(
            s7_ctx, s7_scenario, s7_factory, args.max_slices, args.repeats
        )
        s7_base_s, _, s7_base_sim = _replay(
            s7_ctx, s7_scenario, StaticBaselineManager, args.max_slices, args.repeats
        )
        report[s7_key] = {
            "ncores": s7_n,
            "scenario": s7_scenario.name,
            "clustered_s": round(s7_s, 4),
            "baseline_s": round(s7_base_s, 4),
            "events": int(s7_sim.events_simulated),
            "events_per_sec": _events_per_sec(s7_sim, s7_s),
            "baseline_events_per_sec": _events_per_sec(s7_base_sim, s7_base_s),
            "clustered_rma_instr_per_invocation": round(
                s7_run.rma_instructions / max(1, s7_run.rma_invocations), 1
            ),
            "result_hash": run_result_hash(s7_run),
            "rma_invocations": int(s7_run.rma_invocations),
            "stage_split": _stage_split(s7_ctx, s7_scenario, s7_factory, args.max_slices),
        }
        print(
            f"{s7_n}-core S7: clustered {s7_s:6.3f}s  baseline {s7_base_s:6.3f}s  "
            f"{report[s7_key]['events_per_sec']:,.0f} events/s"
        )

    # ---- the equivalence contract: one cluster == flat, bit for bit --------
    eq_n = args.equivalence_ncores
    eq_ctx = get_context(eq_n, names=BENCHMARK_SUBSET)
    eq_scenario = cluster_churn(
        f"scaling-eq-{eq_n}core",
        eq_n,
        BENCHMARK_SUBSET,
        cluster_size=max(2, eq_n // 4),
        cycles=4,
        horizon_intervals=8 * eq_n,
        seed=args.seed,
    )
    _, one_run, _ = _replay(
        eq_ctx, eq_scenario, lambda: rm2_combined(cluster_size=eq_n), args.max_slices, 1
    )
    _, eq_flat_run, _ = _replay(
        eq_ctx, eq_scenario, lambda: rm2_combined(incremental=True), args.max_slices, 1
    )
    identical = runs_bit_identical(one_run, eq_flat_run)
    report["equivalence"] = {
        "ncores": eq_n,
        "bit_identical": identical,
        "result_hash": run_result_hash(eq_flat_run),
    }
    report["bit_identical"] = identical
    print(f"{eq_n}-core single-cluster == flat: bit-identical={identical}")

    write_bench_artifact("scaling", report)
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
