#!/usr/bin/env python
"""Benchmark: batched/incremental manager pipeline vs the reference path.

PR 2 made scenario replay fast under the baseline manager but left the
coordinated-manager hot path -- per-core curve construction plus a full
rebuild of the global min-plus reduction tree on every interval --
dominating wall-clock.  This benchmark replays the same dynamic scenario
with the coordinated manager's batched/incremental pipeline
(``incremental=True``: stacked curve tensors, curve memoization, persistent
reduction tree) and with the pre-PR recompute-everything reference
(``incremental=False``), verifies the runs are bit-identical, and records
wall-clock, speedup and result hashes into
``benchmarks/_artifacts/BENCH_manager_overhead.json``.

Usage::

    PYTHONPATH=src python tools/bench_manager_overhead.py \
        [--ncores 8] [--horizon 512] [--max-slices 24] [--repeats 3]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))
from _bench_common import (  # noqa: E402
    BENCHMARK_SUBSET,
    add_src_to_path,
    machine_calibration_s,
    run_result_hash,
    runs_bit_identical,
    time_best_of,
    write_bench_artifact,
)

# Small-suite database at the test suite's trace density: reuses the test
# cache when present.  Must be set before repro.experiments.runner imports.
os.environ.setdefault("REPRO_ACCESSES_PER_SET", "400")
add_src_to_path()

from repro.core.managers import (  # noqa: E402
    dvfs_only,
    rm1_partitioning_only,
    rm2_combined,
    rm3_core_adaptive,
)
from repro.experiments.runner import get_context  # noqa: E402
from repro.scenarios import poisson_arrivals  # noqa: E402
from repro.simulation.rma_sim import RMASimulator  # noqa: E402

MANAGERS = {
    "rm1-partitioning": rm1_partitioning_only,
    "rm2-combined": rm2_combined,
    "rm3-core-adaptive": rm3_core_adaptive,
    "dvfs-only": dvfs_only,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ncores", type=int, default=8)
    parser.add_argument(
        "--horizon", type=int, default=512, help="scenario horizon in intervals (total work)"
    )
    parser.add_argument("--max-slices", type=int, default=24)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--managers", nargs="*", default=list(MANAGERS), choices=list(MANAGERS))
    args = parser.parse_args(argv)

    ctx = get_context(args.ncores, names=BENCHMARK_SUBSET)
    scenario = poisson_arrivals(
        f"mgr-bench-{args.ncores}core",
        args.ncores,
        BENCHMARK_SUBSET,
        rate_per_interval=0.25,
        horizon_intervals=args.horizon,
        seed=args.seed,
    )

    report: dict = {
        "benchmark": "manager_overhead",
        "ncores": args.ncores,
        "horizon_intervals": args.horizon,
        "max_slices": args.max_slices,
        "accesses_per_set": int(os.environ["REPRO_ACCESSES_PER_SET"]),
        "repeats": args.repeats,
        "calibration_s": round(machine_calibration_s(), 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "managers": {},
    }
    identical = True
    for name in args.managers:
        factory = MANAGERS[name]
        ref_s, ref_run = time_best_of(
            lambda: RMASimulator(
                ctx.system,
                ctx.db,
                scenario.workload,
                factory(incremental=False),
                max_slices=args.max_slices,
                scenario=scenario,
            ).run(),
            args.repeats,
        )
        inc_s, inc_run = time_best_of(
            lambda: RMASimulator(
                ctx.system,
                ctx.db,
                scenario.workload,
                factory(incremental=True),
                max_slices=args.max_slices,
                scenario=scenario,
            ).run(),
            args.repeats,
        )
        same = runs_bit_identical(ref_run, inc_run)
        identical = identical and same
        report["managers"][name] = {
            "reference_s": round(ref_s, 4),
            "incremental_s": round(inc_s, 4),
            "speedup": round(ref_s / inc_s, 3),
            "bit_identical": same,
            "result_hash": run_result_hash(inc_run),
            "rma_invocations": int(inc_run.rma_invocations),
        }
        print(
            f"{name:18s} reference {ref_s:7.3f}s  incremental {inc_s:7.3f}s  "
            f"speedup {ref_s / inc_s:5.2f}x  bit-identical={same}"
        )
    report["bit_identical"] = identical

    write_bench_artifact("manager_overhead", report)
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
