#!/usr/bin/env python
"""Benchmark smoke run: one fixed-workload bench + one scenario bench.

A reduced-fidelity (``REPRO_MAX_SLICES``-truncated) pass over a
``run_matrix`` fixed-workload block and an S1-style scenario block, run
*twice* each: the cold pass simulates and populates the persistent
run-results store, the warm pass must be served from it.  Wall-clocks for
both passes land in ``benchmarks/_artifacts/BENCH_smoke.json`` so CI keeps
a perf-trajectory artefact per commit.

Usage::

    PYTHONPATH=src python tools/bench_smoke.py [--cache-dir PATH]
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))
from _bench_common import (  # noqa: E402
    BENCHMARK_SUBSET,
    add_src_to_path,
    machine_calibration_s,
    write_bench_artifact,
)

# Reduced fidelity; must be set before repro.experiments.runner imports.
os.environ.setdefault("REPRO_MAX_SLICES", "12")
os.environ.setdefault("REPRO_ACCESSES_PER_SET", "400")
add_src_to_path()

from repro.experiments.runner import (  # noqa: E402
    BASELINE,
    DEFAULT_CACHE_DIR,
    RM2,
    RM3,
    get_context,
)
from repro.simulation.results_store import ResultsStore  # noqa: E402
from repro.scenarios import poisson_arrivals  # noqa: E402
from repro.workloads.mixes import Workload  # noqa: E402


def _timed(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    args = parser.parse_args(argv)

    ctx = get_context(4, cache_dir=args.cache_dir, names=BENCHMARK_SUBSET)
    # The cold pass must time *simulation*: swap in a fresh throwaway store
    # so results persisted by earlier runs (the shared cache_dir default)
    # cannot serve it, while the warm pass still exercises store reads.
    if ctx.results_store is not None:
        ctx.results_store = ResultsStore(tempfile.mkdtemp(prefix="bench_smoke_results_"))
    store = ctx.results_store
    workloads = [
        Workload(
            name="smoke-a", apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like")
        ),
        Workload(name="smoke-b", apps=("astar_like", "lbm_like", "namd_like", "mcf_like")),
    ]
    scenario = poisson_arrivals(
        "smoke-s1",
        4,
        BENCHMARK_SUBSET,
        rate_per_interval=0.25,
        horizon_intervals=48,
        seed=0,
    )

    report: dict = {
        "benchmark": "smoke",
        "max_slices": os.environ["REPRO_MAX_SLICES"],
        "accesses_per_set": os.environ["REPRO_ACCESSES_PER_SET"],
        "result_store": store is not None,
        "calibration_s": round(machine_calibration_s(), 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }

    def _block_hash(out: dict) -> str:
        """Digest of the block's scored numbers (full precision)."""
        parts = []
        for key in sorted(out):
            res = out[key]
            if hasattr(res, "savings_pct"):  # WorkloadComparison
                parts.append(f"{key}|{res.savings_pct!r}|{res.n_violations}")
            else:  # RunResult
                parts.append(f"{key}|{res.total_energy_nj!r}|{res.max_time_ns!r}")
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]

    for label, block in (
        ("fixed_workload", lambda: ctx.run_matrix(workloads, [RM2, RM3])),
        ("scenario", lambda: ctx.run_scenarios([scenario], [BASELINE, RM2])),
    ):
        hits_before = store.hits if store else 0
        cold_s, cold_out = _timed(block)
        warm_hits_before = store.hits if store else 0
        warm_s, _ = _timed(block)
        report[label] = {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "cold_store_hits": warm_hits_before - hits_before,
            "warm_store_hits": (store.hits if store else 0) - warm_hits_before,
            "result_hash": _block_hash(cold_out),
        }
        print(
            f"{label:15s} cold {cold_s:7.3f}s  warm {warm_s:7.3f}s  "
            f"warm store hits {report[label]['warm_store_hits']}"
        )

    write_bench_artifact("smoke", report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
