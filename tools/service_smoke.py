#!/usr/bin/env python
"""End-to-end service smoke: boot, replay, crash, recover, overload -- gated.

The CI ``service-smoke`` job's driver, in three stages (``--stage``):

* ``smoke`` -- launch ``tools/serve.py`` on a free port with the
  small-suite benchmark subset and bench-smoke fidelity
  (``REPRO_MAX_SLICES=12``, ``REPRO_ACCESSES_PER_SET=400``), submit the
  bench-smoke S1 scenario under the baseline and RM2 managers, poll to
  ``done``, require an identical resubmission to coalesce, and compare
  every ``result_hash`` against the committed baseline
  (``benchmarks/_artifacts/baselines/BENCH_service_smoke.json``).
* ``restart`` -- submit a four-job burst to a journalled single-worker
  server, **SIGKILL it mid-queue**, read the journal's unsettled set,
  reboot the server on the same journal, and require every journalled job
  to complete with hashes byte-identical to the baseline's
  ``restart_jobs`` section (``--require-pending`` additionally demands
  jobs really were pending at the kill, which CI's cold results store
  guarantees).
* ``backpressure`` -- boot with ``--max-queue 1 --workers 1``, wedge the
  worker with a never-before-seen job, and require the overflow
  submissions to draw ``429`` + an integral ``Retry-After`` header plus a
  nonzero ``repro_service_jobs_rejected`` counter.

Exit status is non-zero on any mismatch, so the job doubles as a semantic
regression gate on the full HTTP path.  After an *intentional* change to
the simulation's numbers::

    PYTHONPATH=src python tools/service_smoke.py --update
    git add benchmarks/_artifacts/baselines/BENCH_service_smoke.json

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--cache-dir PATH]
        [--stage smoke|restart|backpressure|all] [--require-pending]
        [--update]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.dirname(__file__))
from _bench_common import (  # noqa: E402
    ARTIFACT_DIR,
    BENCHMARK_SUBSET,
    write_bench_artifact,
)

BASELINE_PATH = os.path.join(ARTIFACT_DIR, "baselines", "BENCH_service_smoke.json")

STAGES = ("smoke", "restart", "backpressure")

#: The smoke jobs: bench_smoke's S1 scenario block, as service requests.
SMOKE_JOBS = {
    "smoke-s1-baseline": {
        "shape": "S1",
        "ncores": 4,
        "name": "smoke-s1",
        "params": {"rate_per_interval": 0.25, "horizon_intervals": 48, "seed": 0},
        "manager": {"kind": "baseline", "name": "baseline"},
    },
    "smoke-s1-rm2": {
        "shape": "S1",
        "ncores": 4,
        "name": "smoke-s1",
        "params": {"rate_per_interval": 0.25, "horizon_intervals": 48, "seed": 0},
        "manager": {"kind": "coordinated", "name": "rm2-combined"},
    },
}


def _restart_job(seed: int, manager: dict) -> dict:
    return {
        "shape": "S1",
        "ncores": 4,
        "name": "smoke-restart",
        "params": {"rate_per_interval": 0.25, "horizon_intervals": 48, "seed": seed},
        "manager": manager,
    }


#: The restart burst: four distinct S1 jobs, journalled then SIGKILL'd.
RESTART_JOBS = {
    "restart-s10-baseline": _restart_job(10, {"kind": "baseline", "name": "baseline"}),
    "restart-s11-rm2": _restart_job(11, {"kind": "coordinated", "name": "rm2-combined"}),
    "restart-s12-baseline": _restart_job(12, {"kind": "baseline", "name": "baseline"}),
    "restart-s13-rm2": _restart_job(13, {"kind": "coordinated", "name": "rm2-combined"}),
}

STARTUP_TIMEOUT_S = 180.0
JOB_TIMEOUT_S = 300.0


def _get_json(url: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.load(resp)


def _post_json(url: str, payload: dict, timeout: float = 30.0) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.load(resp)


def _scrape_metrics(base: str) -> dict:
    with urllib.request.urlopen(base + "/metrics", timeout=30.0) as resp:
        text = resp.read().decode()
    return {
        line.split()[0]: float(line.split()[1])
        for line in text.splitlines()
        if line and not line.startswith("#")
    }


def _start_server(
    cache_dir: str | None, extra_args: list[str] | None = None, workers: int = 2
) -> tuple[subprocess.Popen, str]:
    """Launch serve.py on a free port; return (process, base URL)."""
    cmd = [
        sys.executable,
        os.path.join(os.path.dirname(__file__), "serve.py"),
        "--port",
        "0",
        "--workers",
        str(workers),
        "--ncores",
        "4",
        "--benchmarks",
        ",".join(BENCHMARK_SUBSET),
    ]
    if cache_dir:
        cmd += ["--cache-dir", cache_dir]
    cmd += extra_args or []
    env = dict(os.environ)
    env.setdefault("REPRO_MAX_SLICES", "12")
    env.setdefault("REPRO_ACCESSES_PER_SET", "400")
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    base = None
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(f"server exited during startup (rc={proc.poll()})")
        print(f"[serve] {line.rstrip()}")
        if line.startswith("listening on "):
            base = line.split("listening on ", 1)[1].strip()
            break
    if base is None:
        proc.kill()
        raise SystemExit("server never reported its address")
    return proc, base


def _stop_server(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()


def _wait_healthy(base: str) -> None:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        try:
            health = _get_json(base + "/healthz", timeout=5.0)
            if health.get("status") in ("ok", "healthy"):
                return
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
    raise SystemExit("/healthz never came up")


def _poll_done(base: str, job_id: str) -> dict:
    deadline = time.monotonic() + JOB_TIMEOUT_S
    while time.monotonic() < deadline:
        status = _get_json(f"{base}/jobs/{job_id}")
        if status["status"] == "done":
            return status
        if status["status"] == "failed":
            raise SystemExit(f"job {job_id} failed: {status.get('error')}")
        time.sleep(0.5)
    raise SystemExit(f"job {job_id} still not done after {JOB_TIMEOUT_S}s")


# ---- stages ------------------------------------------------------------------


def _stage_smoke(cache_dir: str | None, report: dict, failures: list[str]) -> None:
    """Happy path: submit, poll, fetch, dedup, metrics sanity."""
    proc, base = _start_server(cache_dir, ["--no-journal"])
    try:
        _wait_healthy(base)
        report["jobs"] = {}
        for label, body in SMOKE_JOBS.items():
            submitted = _post_json(base + "/jobs", body)
            _poll_done(base, submitted["job_id"])
            result = _get_json(f"{base}/jobs/{submitted['job_id']}/result")
            report["jobs"][label] = {
                "job_id": submitted["job_id"],
                "result_hash": result["result_hash"],
                "total_energy_nj": result["total_energy_nj"],
            }
            print(
                f"{label:20s} hash {result['result_hash']}  "
                f"energy {result['total_energy_nj']:.4g} nJ"
            )

        # Resubmitting an identical request must coalesce, not re-run.
        again = _post_json(base + "/jobs", SMOKE_JOBS["smoke-s1-rm2"])
        if not again.get("deduped"):
            failures.append("resubmission was not deduplicated")

        metrics = _scrape_metrics(base)
        report["metrics"] = {
            k: metrics[k]
            for k in (
                "repro_service_jobs_done",
                "repro_service_simulations",
                "repro_service_jobs_deduped",
                "repro_service_queue_depth",
            )
        }
        if metrics["repro_service_jobs_done"] < len(SMOKE_JOBS):
            failures.append(f"jobs_done metric too low: {metrics}")
        if metrics["repro_service_jobs_deduped"] < 1:
            failures.append("dedup metric never incremented")
    finally:
        _stop_server(proc)


def _journal_pending_ids(journal_dir: str) -> set[str]:
    """The unsettled job ids in a journal file (submitted, never settled)."""
    path = os.path.join(journal_dir, "journal.jsonl")
    pending: set[str] = set()
    try:
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return pending
    for line in raw.splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn final line: the crash we are simulating
        if record.get("event") == "submitted":
            pending.add(record["job_id"])
        elif record.get("event") in ("published", "failed"):
            pending.discard(record["job_id"])
    return pending


def _stage_restart(
    cache_dir: str | None, report: dict, failures: list[str], require_pending: bool
) -> None:
    """Durability: journalled burst -> SIGKILL mid-queue -> reboot -> drain."""
    journal_dir = tempfile.mkdtemp(prefix="smoke-journal-")
    journal_args = ["--journal-dir", journal_dir]
    proc, base = _start_server(cache_dir, journal_args, workers=1)
    submitted_ids: dict[str, str] = {}
    try:
        _wait_healthy(base)
        for label, body in RESTART_JOBS.items():
            submitted_ids[label] = _post_json(base + "/jobs", body)["job_id"]
    except BaseException:
        _stop_server(proc)
        raise
    # SIGKILL, not terminate: no cleanup, no drain -- the crash is real.
    proc.kill()
    proc.wait(timeout=30)

    pending = _journal_pending_ids(journal_dir)
    print(f"restart: {len(pending)}/{len(RESTART_JOBS)} jobs pending at SIGKILL")
    if require_pending and not pending:
        failures.append(
            "restart stage found no pending jobs at SIGKILL; the burst "
            "finished too fast to exercise recovery (is the results store warm?)"
        )

    proc, base = _start_server(cache_dir, journal_args, workers=1)
    try:
        _wait_healthy(base)
        metrics = _scrape_metrics(base)
        if metrics.get("repro_service_jobs_recovered", 0) != len(pending):
            failures.append(
                f"rebooted service recovered {metrics.get('repro_service_jobs_recovered')}"
                f" jobs, journal held {len(pending)}"
            )
        report["restart_jobs"] = {}
        for label, body in RESTART_JOBS.items():
            # Resubmit every body: recovered jobs coalesce onto the journal's
            # copy, already-finished ones are served from the at-rest store;
            # either way the content-addressed id must not change.
            job_id = _post_json(base + "/jobs", body)["job_id"]
            if job_id != submitted_ids[label]:
                failures.append(
                    f"{label}: job id changed across restart "
                    f"({submitted_ids[label]} -> {job_id})"
                )
            _poll_done(base, job_id)
            result = _get_json(f"{base}/jobs/{job_id}/result")
            report["restart_jobs"][label] = {
                "job_id": job_id,
                "result_hash": result["result_hash"],
                "recovered": job_id in pending,
            }
            print(f"{label:22s} hash {result['result_hash']}  recovered={job_id in pending}")
        report["restart_pending_at_kill"] = len(pending)
        leftover = _journal_pending_ids(journal_dir)
        if leftover:
            failures.append(f"journal still holds unsettled jobs after drain: {leftover}")
    finally:
        _stop_server(proc)
        shutil.rmtree(journal_dir, ignore_errors=True)


def _stage_backpressure(cache_dir: str | None, report: dict, failures: list[str]) -> None:
    """Admission: a full single-slot queue answers 429 + Retry-After."""
    proc, base = _start_server(cache_dir, ["--no-journal", "--max-queue", "1"], workers=1)
    try:
        _wait_healthy(base)
        # Wedge the worker with jobs no store has ever seen (per-run seed)
        # on a long horizon (the vectorised replay clears short horizons in
        # milliseconds), so overflow happens whether or not the results
        # store is warm and however slow the submitting client is.
        salt = int(time.time()) % 1_000_000 + 1_000
        bodies = [
            {
                "shape": "S1",
                "ncores": 4,
                "name": "smoke-backpressure",
                "params": {
                    "rate_per_interval": 1.0,
                    "horizon_intervals": 50_000,
                    "seed": salt + i,
                },
                "manager": {"kind": "baseline", "name": "baseline"},
            }
            for i in range(6)
        ]
        accepted, rejected, retry_afters = 0, 0, []
        for i, body in enumerate(bodies):
            try:
                _post_json(base + "/jobs", body)
                accepted += 1
            except urllib.error.HTTPError as err:
                if err.code != 429:
                    failures.append(f"overflow submission {i} drew {err.code}, not 429")
                    continue
                rejected += 1
                retry_after = err.headers.get("Retry-After")
                payload = json.load(err)
                if retry_after is None or int(retry_after) < 1:
                    failures.append(f"429 without a usable Retry-After: {retry_after!r}")
                if payload.get("queue_capacity") != 1:
                    failures.append(f"429 body lacks queue_capacity=1: {payload}")
                retry_afters.append(retry_after)
        print(
            f"backpressure: {accepted} accepted, {rejected} rejected "
            f"(Retry-After: {retry_afters})"
        )
        if accepted < 1:
            failures.append("backpressure probe: nothing was admitted")
        if rejected < 1:
            failures.append("backpressure probe never drew a 429")
        metrics = _scrape_metrics(base)
        if metrics.get("repro_service_jobs_rejected", 0) < 1:
            failures.append("jobs_rejected metric never incremented")
        report["backpressure"] = {"accepted": accepted, "rejected": rejected}
    finally:
        _stop_server(proc)


# ---- gate --------------------------------------------------------------------

#: Baseline sections gated per stage (hash comparisons are deterministic;
#: pending/rejection counts are runtime-dependent and deliberately ungated).
STAGE_GATES = {"smoke": "jobs", "restart": "restart_jobs"}


def _gate(report: dict, stages: list[str], failures: list[str]) -> None:
    if not os.path.exists(BASELINE_PATH):
        failures.append(f"no committed baseline at {BASELINE_PATH}; run with --update")
        return
    with open(BASELINE_PATH, encoding="utf-8") as fh:
        baseline = json.load(fh)
    for stage in stages:
        section = STAGE_GATES.get(stage)
        if section is None:
            continue
        for label, fresh in report.get(section, {}).items():
            want = baseline.get(section, {}).get(label, {}).get("result_hash")
            if fresh["result_hash"] != want:
                failures.append(f"{label}: hash {fresh['result_hash']} != baseline {want}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument(
        "--stage",
        choices=STAGES + ("all",),
        default="all",
        help="run one stage (CI runs them as separate steps) or all",
    )
    parser.add_argument(
        "--require-pending",
        action="store_true",
        help="fail the restart stage unless jobs were genuinely pending at "
        "the SIGKILL (CI passes this; a warm local store may not)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baseline with the fresh hashes",
    )
    args = parser.parse_args(argv)
    stages = list(STAGES) if args.stage == "all" else [args.stage]
    if args.update and args.stage != "all":
        parser.error("--update must regenerate every stage: drop --stage")

    # Merge into any fresh artifact from an earlier stage of the same CI
    # job, so the uploaded BENCH_service_smoke.json carries all sections.
    fresh_path = os.path.join(ARTIFACT_DIR, "BENCH_service_smoke.json")
    report: dict = {}
    if os.path.exists(fresh_path):
        with open(fresh_path, encoding="utf-8") as fh:
            report = json.load(fh)
    report.update(
        {
            "benchmark": "service_smoke",
            "max_slices": os.environ.get("REPRO_MAX_SLICES", "12"),
            "accesses_per_set": os.environ.get("REPRO_ACCESSES_PER_SET", "400"),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        }
    )

    failures: list[str] = []
    for stage in stages:
        print(f"=== stage: {stage} ===")
        if stage == "smoke":
            _stage_smoke(args.cache_dir, report, failures)
        elif stage == "restart":
            _stage_restart(args.cache_dir, report, failures, args.require_pending)
        else:
            _stage_backpressure(args.cache_dir, report, failures)

    fresh_path = write_bench_artifact("service_smoke", report)
    if args.update:
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        shutil.copyfile(fresh_path, BASELINE_PATH)
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    _gate(report, stages, failures)
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"service smoke OK ({', '.join(stages)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
