#!/usr/bin/env python
"""End-to-end service smoke: boot the server, replay S1 over HTTP, gate hashes.

The CI ``service-smoke`` job's driver.  It

1. launches ``tools/serve.py`` as a subprocess on a free port
   (``--port 0``) with the small-suite benchmark subset and bench-smoke
   fidelity (``REPRO_MAX_SLICES=12``, ``REPRO_ACCESSES_PER_SET=400``),
2. waits for ``/healthz``,
3. submits the bench-smoke S1 scenario (rate 0.25, horizon 48, seed 0)
   under the baseline and RM2 managers, polls each job to ``done``,
4. resubmits one job and requires the response to be deduplicated,
5. fetches the results and compares every ``result_hash`` against the
   committed baseline
   (``benchmarks/_artifacts/baselines/BENCH_service_smoke.json``),
6. scrapes ``/metrics`` and sanity-checks the counters.

Exit status is non-zero on any mismatch, so the job doubles as a semantic
regression gate on the full HTTP path.  After an *intentional* change to
the simulation's numbers::

    PYTHONPATH=src python tools/service_smoke.py --update
    git add benchmarks/_artifacts/baselines/BENCH_service_smoke.json

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--cache-dir PATH] [--update]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.dirname(__file__))
from _bench_common import (  # noqa: E402
    ARTIFACT_DIR,
    BENCHMARK_SUBSET,
    write_bench_artifact,
)

BASELINE_PATH = os.path.join(ARTIFACT_DIR, "baselines", "BENCH_service_smoke.json")

#: The smoke jobs: bench_smoke's S1 scenario block, as service requests.
SMOKE_JOBS = {
    "smoke-s1-baseline": {
        "shape": "S1",
        "ncores": 4,
        "name": "smoke-s1",
        "params": {"rate_per_interval": 0.25, "horizon_intervals": 48, "seed": 0},
        "manager": {"kind": "baseline", "name": "baseline"},
    },
    "smoke-s1-rm2": {
        "shape": "S1",
        "ncores": 4,
        "name": "smoke-s1",
        "params": {"rate_per_interval": 0.25, "horizon_intervals": 48, "seed": 0},
        "manager": {"kind": "coordinated", "name": "rm2-combined"},
    },
}

STARTUP_TIMEOUT_S = 180.0
JOB_TIMEOUT_S = 300.0


def _get_json(url: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.load(resp)


def _post_json(url: str, payload: dict, timeout: float = 30.0) -> dict:
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.load(resp)


def _start_server(cache_dir: str | None) -> tuple[subprocess.Popen, str]:
    """Launch serve.py on a free port; return (process, base URL)."""
    cmd = [
        sys.executable, os.path.join(os.path.dirname(__file__), "serve.py"),
        "--port", "0", "--workers", "2", "--ncores", "4",
        "--benchmarks", ",".join(BENCHMARK_SUBSET),
    ]
    if cache_dir:
        cmd += ["--cache-dir", cache_dir]
    env = dict(os.environ)
    env.setdefault("REPRO_MAX_SLICES", "12")
    env.setdefault("REPRO_ACCESSES_PER_SET", "400")
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    base = None
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited during startup (rc={proc.poll()})"
            )
        print(f"[serve] {line.rstrip()}")
        if line.startswith("listening on "):
            base = line.split("listening on ", 1)[1].strip()
            break
    if base is None:
        proc.kill()
        raise SystemExit("server never reported its address")
    return proc, base


def _wait_healthy(base: str) -> None:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        try:
            health = _get_json(base + "/healthz", timeout=5.0)
            if health.get("status") == "ok":
                return
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
    raise SystemExit("/healthz never came up")


def _poll_done(base: str, job_id: str) -> dict:
    deadline = time.monotonic() + JOB_TIMEOUT_S
    while time.monotonic() < deadline:
        status = _get_json(f"{base}/jobs/{job_id}")
        if status["status"] == "done":
            return status
        if status["status"] == "failed":
            raise SystemExit(f"job {job_id} failed: {status.get('error')}")
        time.sleep(0.5)
    raise SystemExit(f"job {job_id} still not done after {JOB_TIMEOUT_S}s")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the committed baseline with the fresh hashes",
    )
    args = parser.parse_args(argv)

    proc, base = _start_server(args.cache_dir)
    failures = []
    report: dict = {
        "benchmark": "service_smoke",
        "max_slices": os.environ.get("REPRO_MAX_SLICES", "12"),
        "accesses_per_set": os.environ.get("REPRO_ACCESSES_PER_SET", "400"),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "jobs": {},
    }
    try:
        _wait_healthy(base)
        for label, body in SMOKE_JOBS.items():
            submitted = _post_json(base + "/jobs", body)
            _poll_done(base, submitted["job_id"])
            result = _get_json(f"{base}/jobs/{submitted['job_id']}/result")
            report["jobs"][label] = {
                "job_id": submitted["job_id"],
                "result_hash": result["result_hash"],
                "total_energy_nj": result["total_energy_nj"],
            }
            print(f"{label:20s} hash {result['result_hash']}  "
                  f"energy {result['total_energy_nj']:.4g} nJ")

        # Resubmitting an identical request must coalesce, not re-run.
        again = _post_json(base + "/jobs", SMOKE_JOBS["smoke-s1-rm2"])
        if not again.get("deduped"):
            failures.append("resubmission was not deduplicated")

        with urllib.request.urlopen(base + "/metrics", timeout=30.0) as resp:
            metrics_text = resp.read().decode()
        metrics = {
            line.split()[0]: float(line.split()[1])
            for line in metrics_text.splitlines()
            if line and not line.startswith("#")
        }
        report["metrics"] = {
            k: metrics[k]
            for k in ("repro_service_jobs_done", "repro_service_simulations",
                      "repro_service_jobs_deduped", "repro_service_queue_depth")
        }
        if metrics["repro_service_jobs_done"] < len(SMOKE_JOBS):
            failures.append(f"jobs_done metric too low: {metrics}")
        if metrics["repro_service_jobs_deduped"] < 1:
            failures.append("dedup metric never incremented")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()

    fresh_path = write_bench_artifact("service_smoke", report)
    if args.update:
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        shutil.copyfile(fresh_path, BASELINE_PATH)
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    if not os.path.exists(BASELINE_PATH):
        failures.append(
            f"no committed baseline at {BASELINE_PATH}; run with --update"
        )
    else:
        with open(BASELINE_PATH, encoding="utf-8") as fh:
            baseline = json.load(fh)
        for label, fresh in report["jobs"].items():
            want = baseline.get("jobs", {}).get(label, {}).get("result_hash")
            if fresh["result_hash"] != want:
                failures.append(
                    f"{label}: hash {fresh['result_hash']} != baseline {want}"
                )

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
