"""Shared plumbing for the ``tools/bench_*.py`` benchmark scripts.

One place for the small-suite benchmark subset (the test suite's seven
apps, chosen so tool runs reuse the tier-1 ``.sim_cache`` database), the
artifact directory, and the ``BENCH_*.json`` writer, so the scripts cannot
drift apart on either the app set or the artifact schema.

Every artifact carries two regression-gate fields consumed by
``tools/bench_compare.py``:

* ``calibration_s`` -- wall-clock of a fixed numpy workload on the
  producing machine, letting the gate rescale wall-clock baselines
  recorded on different hardware before applying its threshold;
* per-run ``result_hash`` values (:func:`run_result_hash`) -- a digest of
  the full-precision simulation numbers, so any semantic drift fails the
  gate exactly, independent of timing noise.
"""

from __future__ import annotations

import json
import os
import sys
import time

#: The test suite's benchmark subset: all four Paper I categories and all
#: four Paper II types, small enough to build fast.
BENCHMARK_SUBSET = [
    "mcf_like",
    "soplex_like",
    "libquantum_like",
    "lbm_like",
    "astar_like",
    "povray_like",
    "namd_like",
]

ARTIFACT_DIR = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "benchmarks", "_artifacts")
)


def add_src_to_path() -> None:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def machine_calibration_s(repeats: int = 3) -> float:
    """Best-of-N wall-clock of a fixed, deterministic yardstick workload.

    A speed yardstick for the producing machine: the regression gate divides
    fresh and baseline wall-clocks by their respective calibrations so a
    slower CI runner does not read as a code regression.  The workload must
    mirror the *replay's* execution profile -- a Python-level event loop
    issuing many numpy operations on small arrays (call-overhead bound) --
    not multithreaded BLAS kernels, whose throughput scales differently
    across machines than the interpreter-bound simulator does.
    """
    import numpy as np

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        rng = np.random.default_rng(0)
        a = rng.random(64)
        acc = 0.0
        for _ in range(12000):
            masked = np.where(a > 0.5, a, np.inf)
            totals = masked[None, :] + a[:, None]
            m = np.argmin(totals, axis=1)
            acc += float(totals[0, m[0]])
        assert acc == acc  # consume the result
        best = min(best, time.perf_counter() - t0)
    return best


def time_best_of(make_run, repeats: int = 3):
    """Best-of-N wall-clock of ``make_run()`` plus its last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = make_run()
        best = min(best, time.perf_counter() - t0)
    return best, result


def runs_bit_identical(a, b) -> bool:
    """``==`` on every scored number of two ``RunResult``s -- no tolerances.

    The one comparator every bench script's ``bit_identical`` artifact
    field goes through, so the scripts cannot drift on what "identical"
    means (timings, energies, interval samples, and the metered RMA
    accounting all count).
    """
    return (
        a.total_energy_nj == b.total_energy_nj
        and a.max_time_ns == b.max_time_ns
        and a.rma_invocations == b.rma_invocations
        and a.rma_instructions == b.rma_instructions
        and len(a.interval_samples) == len(b.interval_samples)
        and all(x == y for x, y in zip(a.interval_samples, b.interval_samples))
    )


def run_result_hash(run) -> str:
    """Digest of one ``RunResult``'s simulation numbers at full precision.

    Delegates to :func:`repro.simulation.metrics.run_result_digest` -- the
    one canonical implementation, shared with the scenario-replay service --
    imported lazily because bench scripts call :func:`add_src_to_path`
    before importing anything from ``repro``.
    """
    from repro.simulation.metrics import run_result_digest

    return run_result_digest(run)


def write_bench_artifact(name: str, report: dict) -> str:
    """Write ``report`` to ``benchmarks/_artifacts/BENCH_<name>.json``."""
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")
    return path
