"""Shared plumbing for the ``tools/bench_*.py`` benchmark scripts.

One place for the small-suite benchmark subset (the test suite's seven
apps, chosen so tool runs reuse the tier-1 ``.sim_cache`` database), the
artifact directory, and the ``BENCH_*.json`` writer, so the scripts cannot
drift apart on either the app set or the artifact schema.
"""

from __future__ import annotations

import json
import os
import sys

#: The test suite's benchmark subset: all four Paper I categories and all
#: four Paper II types, small enough to build fast.
BENCHMARK_SUBSET = [
    "mcf_like", "soplex_like", "libquantum_like", "lbm_like",
    "astar_like", "povray_like", "namd_like",
]

ARTIFACT_DIR = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "benchmarks", "_artifacts")
)


def add_src_to_path() -> None:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def write_bench_artifact(name: str, report: dict) -> str:
    """Write ``report`` to ``benchmarks/_artifacts/BENCH_<name>.json``."""
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")
    return path
