#!/usr/bin/env python
"""Seeded chaos smoke: fault storms must heal to bit-identical results.

The CI ``chaos-smoke`` job's driver.  It runs three storms over the same
six jobs as ``tools/service_smoke.py`` (the smoke pair plus the restart
burst), each storm being a cold pass and a warm pass over one results
store:

* a **clean** storm (no fault plan) that produces the reference hashes;
* two **faulty** storms with the *same* deterministic fault plan
  (``--seed``, default 1337): worker crashes, hangs (tripping the
  per-attempt watchdog), slow dispatches, results-store put failures,
  journal torn writes and fsync errors during the cold pass, injected SSE
  client disconnects against a live HTTP server, and a corrupted
  store entry (digest-verified, quarantined, re-simulated) during the
  warm pass.

Gates, per faulty storm:

* every job settles ``done`` with a ``result_hash`` byte-identical to the
  clean storm **and** to the committed service-smoke baseline
  (``benchmarks/_artifacts/baselines/BENCH_service_smoke.json``);
* total attempts stay within ``jobs x (1 + max_retries)`` -- no retry
  storms -- and retry/watchdog counters equal the plan's actual
  crash/hang fires exactly;
* the warm pass quarantines exactly one poisoned entry and re-simulates
  only what the storm kept out of the store;
* both SSE disconnects are swallowed and counted, and a third stream
  completes;
* and the two faulty storms -- same seed, fresh directories -- emit
  **identical journal event sequences**, the determinism contract that
  makes any chaos failure replayable from its seed alone.

The storm's crash+hang fire budget (3) never exceeds the service's retry
budget (``max_retries=3``), which is what guarantees settlement for *any*
seed -- the same invariant the hypothesis property in
``tests/test_service_chaos.py`` checks across random seeds.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py [--seed N] [--cache-dir PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
import urllib.request

# Pin bench-smoke fidelity before any repro import reads the knobs.
os.environ.setdefault("REPRO_MAX_SLICES", "12")
os.environ.setdefault("REPRO_ACCESSES_PER_SET", "400")

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from _bench_common import BENCHMARK_SUBSET, write_bench_artifact  # noqa: E402
from service_smoke import BASELINE_PATH, RESTART_JOBS, SMOKE_JOBS  # noqa: E402

from repro.experiments.runner import (  # noqa: E402
    DEFAULT_CACHE_DIR,
    ExperimentContext,
    get_context,
)
from repro.service import ReplayService, faults, make_server  # noqa: E402
from repro.service.faults import FaultPlan, FaultRule  # noqa: E402
from repro.simulation.results_store import ResultsStore  # noqa: E402

#: The chaos population: the service smoke's six distinct S1 jobs.
CHAOS_JOBS = {**SMOKE_JOBS, **RESTART_JOBS}

MAX_RETRIES = 3
JOB_TIMEOUT_S = 4.0
#: Injected hang duration; must exceed the watchdog deadline.
HANG_S = 6.0
JOB_WAIT_S = 300.0


def _storm_plan(seed: int) -> FaultPlan:
    """The cold-pass fault plan: crash+hang budget (3) == ``MAX_RETRIES``."""
    return FaultPlan(
        seed,
        [
            FaultRule(faults.EXECUTOR_CRASH, rate=0.4, max_fires=2),
            FaultRule(faults.EXECUTOR_HANG, rate=0.2, max_fires=1, param=HANG_S),
            FaultRule(faults.EXECUTOR_SLOW, rate=0.3, max_fires=2, param=0.05),
            FaultRule(faults.STORE_PUT_FAIL, rate=0.4, max_fires=2),
            FaultRule(faults.JOURNAL_TORN_WRITE, rate=0.3, max_fires=2),
            FaultRule(faults.JOURNAL_FSYNC, rate=0.3, max_fires=2),
            FaultRule(faults.SSE_DISCONNECT, rate=1.0, max_fires=2),
        ],
    )


def _warm_plan(seed: int) -> FaultPlan:
    """The warm-pass plan: poison exactly one stored entry on load."""
    return FaultPlan(seed + 1, [FaultRule(faults.STORE_LOAD_CORRUPT, rate=1.0, max_fires=1)])


def _make_factory(base_ctx: ExperimentContext, root: str):
    """Per-storm context factory: shared database, private results store."""

    def factory(ncores: int) -> ExperimentContext:
        if ncores != base_ctx.system.ncores:
            raise ValueError(f"chaos jobs are all {base_ctx.system.ncores}-core")
        return ExperimentContext(
            system=base_ctx.system,
            db=base_ctx.db,
            max_slices=base_ctx.max_slices,
            results_store=ResultsStore(os.path.join(root, "results")),
        )

    return factory


def _make_service(factory, journal_dir: str) -> ReplayService:
    # workers=1 + autostart=False: submit everything, then run -- the
    # journal event order becomes a pure function of the fault seed.
    return ReplayService(
        context_factory=factory,
        workers=1,
        journal=journal_dir,
        max_retries=MAX_RETRIES,
        job_timeout_s=JOB_TIMEOUT_S,
        backoff_base_s=0.02,
        backoff_cap_s=0.2,
        autostart=False,
    )


def _post_json(url: str, payload: dict, timeout: float = 30.0) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.load(resp)


def _read_stream(base: str, job_id: str) -> str:
    """One SSE consumption; injected disconnects surface as truncation."""
    try:
        with urllib.request.urlopen(f"{base}/jobs/{job_id}/stream?batch=64", timeout=60.0) as resp:
            return resp.read().decode(errors="replace")
    except OSError as exc:
        return f"<aborted: {exc}>"


def _journal_sequence(journal_dir: str) -> list[tuple]:
    """The journal's ``(event, job_id, attempt)`` sequence, in write order."""
    path = os.path.join(journal_dir, "journal.jsonl")
    seq = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            try:
                record = json.loads(line)
            except ValueError:
                continue  # an injected torn write, healed on the next line
            seq.append((record["event"], record["job_id"], record.get("attempt")))
    return seq


def _run_storm(
    name: str,
    root: str,
    base_ctx: ExperimentContext,
    failures: list[str],
    plan: FaultPlan | None,
    warm_plan: FaultPlan | None,
) -> dict:
    """One cold+warm storm; returns hashes, counters and the journal trace."""
    factory = _make_factory(base_ctx, root)
    out: dict = {"name": name}

    # ---- cold pass: HTTP submissions against an empty store ------------------
    svc = _make_service(factory, os.path.join(root, "journal-cold"))
    server = make_server(svc)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    try:
        with faults.installed(plan) if plan is not None else _noop():
            ids = {
                label: _post_json(base + "/jobs", body)["job_id"]
                for label, body in CHAOS_JOBS.items()
            }
            svc.start()
            hashes = {}
            for label, job_id in ids.items():
                job = svc.get_job(job_id)
                if not job.wait(JOB_WAIT_S) or job.status != "done":
                    failures.append(
                        f"{name}/{label}: never settled done "
                        f"(status={job.status}, error={job.error})"
                    )
                    continue
                hashes[label] = job.result_hash

            # SSE: the plan's two injected disconnects truncate the first two
            # streams; the third (budget spent) must complete.
            first_id = next(iter(ids.values()))
            streams = [_read_stream(base, first_id) for _ in range(3)]
            expected_cuts = 0
            if plan is not None:
                expected_cuts = plan.report()[faults.SSE_DISCONNECT]["fires"]
                if expected_cuts != 2:
                    failures.append(f"{name}: SSE disconnect budget misfired ({expected_cuts})")
                if any("event: done" in s for s in streams[:2]):
                    failures.append(f"{name}: an injected-disconnect stream completed")
            if "event: done" not in streams[-1]:
                failures.append(f"{name}: final SSE stream did not complete")
            deadline = time.monotonic() + 10.0
            while svc.client_disconnects < expected_cuts and time.monotonic() < deadline:
                time.sleep(0.05)
            if svc.client_disconnects != expected_cuts:
                failures.append(
                    f"{name}: client_disconnects={svc.client_disconnects}, "
                    f"expected {expected_cuts}"
                )

            out["hashes"] = hashes
            out["attempts_total"] = svc.attempts_total
            out["jobs_retried"] = svc.jobs_retried
            out["watchdog_timeouts"] = svc.watchdog_timeouts
            out["jobs_failed"] = svc.jobs_failed
            out["store_put_errors"] = svc.store_put_errors
            out["health_cold"] = svc.health()["status"]
            if svc.attempts_total > len(CHAOS_JOBS) * (1 + MAX_RETRIES):
                failures.append(
                    f"{name}: retry storm -- {svc.attempts_total} attempts for "
                    f"{len(CHAOS_JOBS)} jobs (budget {1 + MAX_RETRIES} each)"
                )
            if svc.jobs_failed:
                failures.append(f"{name}: {svc.jobs_failed} jobs settled failed")
            if plan is not None:
                report = plan.report()
                crash = report[faults.EXECUTOR_CRASH]["fires"]
                hang = report[faults.EXECUTOR_HANG]["fires"]
                out["fault_fires"] = {
                    site: stats["fires"] for site, stats in report.items()
                }
                if svc.jobs_retried != crash + hang:
                    failures.append(
                        f"{name}: jobs_retried={svc.jobs_retried} != "
                        f"crash+hang fires {crash + hang}"
                    )
                if svc.watchdog_timeouts != hang:
                    failures.append(
                        f"{name}: watchdog_timeouts={svc.watchdog_timeouts} != "
                        f"hang fires {hang}"
                    )
                if svc.store_put_errors != report[faults.STORE_PUT_FAIL]["fires"]:
                    failures.append(
                        f"{name}: store_put_errors={svc.store_put_errors} != "
                        f"put-fail fires"
                    )
    finally:
        server.shutdown()
        server.server_close()
        svc.close()

    # ---- warm pass: same store, fresh service+journal; poisoned load heals ---
    svc2 = _make_service(factory, os.path.join(root, "journal-warm"))
    try:
        with faults.installed(warm_plan) if warm_plan is not None else _noop():
            jobs2 = {
                label: svc2.submit(dict(body)) for label, body in CHAOS_JOBS.items()
            }
            svc2.start()
            for label, job in jobs2.items():
                if not job.wait(JOB_WAIT_S) or job.status != "done":
                    failures.append(f"{name}/{label}: warm pass did not settle done")
                elif job.result_hash != out["hashes"].get(label):
                    failures.append(
                        f"{name}/{label}: warm hash {job.result_hash} != cold "
                        f"{out['hashes'].get(label)}"
                    )
            quarantined = svc2.health()["store_quarantined"]
            out["warm_quarantined"] = quarantined
            out["warm_simulations"] = svc2.simulations
            if warm_plan is not None:
                # Exactly one poisoned entry heals; the only other replays are
                # the jobs whose cold-pass persist was fault-injected away.
                expected_sims = 1 + out.get("store_put_errors", 0)
                if quarantined != 1:
                    failures.append(f"{name}: warm quarantined={quarantined}, expected 1")
                if svc2.simulations != expected_sims:
                    failures.append(
                        f"{name}: warm simulations={svc2.simulations}, "
                        f"expected {expected_sims} (1 quarantined + "
                        f"{out.get('store_put_errors', 0)} unpersisted)"
                    )
            elif svc2.simulations != 0:
                failures.append(f"{name}: clean warm pass re-simulated {svc2.simulations} jobs")
    finally:
        svc2.close()

    cold_seq = _journal_sequence(os.path.join(root, "journal-cold"))
    warm_seq = _journal_sequence(os.path.join(root, "journal-warm"))
    out["journal_sequence"] = cold_seq + warm_seq

    # An abandoned (watchdog'd) hang attempt may still be sleeping on a
    # disposable thread; let it unwind while no plan is installed so it
    # cannot consume the *next* storm's fault decisions.
    if out.get("watchdog_timeouts"):
        time.sleep(HANG_S - JOB_TIMEOUT_S + 0.5)
    return out


class _noop:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _gate_against_baseline(hashes: dict, failures: list[str]) -> None:
    """Faulty-storm hashes must equal the committed service-smoke baseline."""
    if not os.path.exists(BASELINE_PATH):
        failures.append(
            f"no committed baseline at {BASELINE_PATH}; "
            "run tools/service_smoke.py --update first"
        )
        return
    with open(BASELINE_PATH, encoding="utf-8") as fh:
        baseline = json.load(fh)
    sections = {**baseline.get("jobs", {}), **baseline.get("restart_jobs", {})}
    for label, fresh in hashes.items():
        want = sections.get(label, {}).get("result_hash")
        if fresh != want:
            failures.append(f"{label}: chaos hash {fresh} != baseline {want}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1337)
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    args = parser.parse_args(argv)

    budget = _storm_plan(args.seed).failure_budget()
    assert budget == MAX_RETRIES, (budget, MAX_RETRIES)

    base_ctx = get_context(4, cache_dir=args.cache_dir, names=list(BENCHMARK_SUBSET))
    work = tempfile.mkdtemp(prefix="chaos-smoke-")
    failures: list[str] = []
    started = time.monotonic()
    try:
        print("=== storm: clean (reference) ===", flush=True)
        clean = _run_storm("clean", os.path.join(work, "clean"), base_ctx, failures, None, None)
        storms = []
        for run in (1, 2):
            print(f"=== storm: faulty-{run} (seed {args.seed}) ===", flush=True)
            storms.append(
                _run_storm(
                    f"faulty-{run}",
                    os.path.join(work, f"faulty-{run}"),
                    base_ctx,
                    failures,
                    _storm_plan(args.seed),
                    _warm_plan(args.seed),
                )
            )
    finally:
        shutil.rmtree(work, ignore_errors=True)

    for storm in storms:
        for label, reference in clean["hashes"].items():
            if storm["hashes"].get(label) != reference:
                failures.append(
                    f"{storm['name']}/{label}: hash {storm['hashes'].get(label)} "
                    f"!= fault-free {reference}"
                )
        _gate_against_baseline(storm["hashes"], failures)
        print(
            f"{storm['name']}: attempts={storm['attempts_total']} "
            f"retried={storm['jobs_retried']} watchdog={storm['watchdog_timeouts']} "
            f"put_errors={storm['store_put_errors']} "
            f"quarantined={storm['warm_quarantined']} "
            f"fires={storm.get('fault_fires')}"
        )
    if storms[0]["journal_sequence"] != storms[1]["journal_sequence"]:
        failures.append(
            "same-seed storms diverged: journal event sequences differ "
            f"({len(storms[0]['journal_sequence'])} vs "
            f"{len(storms[1]['journal_sequence'])} events)"
        )
    else:
        print(
            f"journal determinism: {len(storms[0]['journal_sequence'])} events, "
            "identical across both seeded storms"
        )
    if sum(storms[0].get("fault_fires", {}).values()) < 1:
        failures.append(f"seed {args.seed} injected no faults at all; pick another")

    report = {
        "benchmark": "chaos_smoke",
        "seed": args.seed,
        "max_retries": MAX_RETRIES,
        "duration_s": round(time.monotonic() - started, 3),
        "reference_hashes": clean["hashes"],
        "storms": [
            {k: v for k, v in storm.items() if k != "journal_sequence"}
            for storm in storms
        ],
        "journal_events": len(storms[0]["journal_sequence"]),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    write_bench_artifact("chaos_smoke", report)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"chaos smoke OK (seed {args.seed}, {report['duration_s']}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
