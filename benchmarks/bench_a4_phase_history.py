"""A4: phase-history extension of the coordinated RMA.

Regenerates the future-work-#1 ablation (phase table + Markov next-phase
prediction versus the stock "next = last interval" assumption).
"""

from __future__ import annotations

from repro.experiments.ablations import a4_phase_history


def test_a4_phase_history(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(lambda: a4_phase_history(ctx4), rounds=1, iterations=1)
    record_artifact(result)
    # the history must not lose energy or QoS relative to the stock manager
    assert result.summary["history avg %"] > result.summary["rm2 avg %"] - 1.0
    assert result.summary["history violations"] <= result.summary["rm2 violations"] + 2
