"""E2: energy savings, 8-core suite.

Regenerates the 8-core energy-savings figure of Paper I (IPDPS 2019).
Paper headline: RM2 up to 14%, avg 6%; RM1 avg 2%.
"""

from __future__ import annotations

from repro.experiments.paper1 import e2_savings_8core


def test_e2_savings_8core(benchmark, record_artifact, ctx8):
    result = benchmark.pedantic(
        lambda: e2_savings_8core(ctx8),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["rm2 avg %"] > result.summary["rm1 avg %"]

