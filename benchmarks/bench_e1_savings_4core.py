"""E1: energy savings of the Combined vs Partitioning RMA, 4-core suite.

Regenerates the 4-core energy-savings figure of Paper I (IPDPS 2019).
Paper headline: RM2 up to 18%, avg 6%; RM1 avg 1%.
"""

from __future__ import annotations

from repro.experiments.paper1 import e1_savings_4core


def test_e1_savings_4core(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e1_savings_4core(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["rm2 avg %"] > result.summary["rm1 avg %"]
    assert result.summary["rm2 max %"] > 5.0

