"""E7: sensitivity to the baseline VF anchor.

Regenerates the baseline-VF sensitivity figure of Paper I (IPDPS 2019).
Paper headline: higher baseline VF leaves more savings headroom.
"""

from __future__ import annotations

from repro.experiments.paper1 import e7_baseline_vf_sensitivity


def test_e7_baseline_vf_sensitivity(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e7_baseline_vf_sensitivity(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["avg % @2.4GHz"] >= result.summary["avg % @1.6GHz"]

