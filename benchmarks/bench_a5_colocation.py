"""A5: scheduler co-location guidance.

Regenerates the future-work-#2 ablation: advisor-guided vs adversarial vs
interleaved grouping of the same application pool.
"""

from __future__ import annotations

from repro.experiments.ablations import a5_colocation


def test_a5_colocation(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(lambda: a5_colocation(ctx4), rounds=1, iterations=1)
    record_artifact(result)
    assert result.summary["advisor %"] >= result.summary["adversarial %"] - 0.5
