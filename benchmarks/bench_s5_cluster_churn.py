"""S5: many-core cluster churn (hierarchical vs flat coordinated RMA).

Whole clusters drain (power-gated) and refill with fresh tenants, the
group-scheduling pattern of a many-core part.  Compares flat incremental
RM2 against the hierarchical ClusteredManager on the same event streams.
"""

from __future__ import annotations

from repro.experiments.scenarios import s5_cluster_churn


def test_s5_cluster_churn(benchmark, record_artifact, ctx16):
    result = benchmark.pedantic(
        lambda: s5_cluster_churn(ctx16),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert len(result.rows) == 2
    # The hierarchy's bounded-gap contract: clustered savings must stay
    # close to the flat manager's on the same scenarios.
    flat = result.summary["rm2-combined avg savings %"]
    clustered = result.summary["rm2-combined-c4 avg savings %"]
    assert abs(flat - clustered) < 10.0
