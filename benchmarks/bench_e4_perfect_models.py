"""E4: perfect (oracle) vs realistic analytical models.

Regenerates the perfect-models figure of Paper I (IPDPS 2019).
Paper headline: perfect avg 8% vs realistic 6%.
"""

from __future__ import annotations

from repro.experiments.paper1 import e4_perfect_models


def test_e4_perfect_models(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e4_perfect_models(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["perfect avg %"] >= result.summary["realistic avg %"] - 1.0

