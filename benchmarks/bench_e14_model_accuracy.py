"""E14: per-interval QoS violation statistics by memory-stall model.

Regenerates the model-accuracy table of Paper II.
Paper headline: Model 3: 3% violation probability; -32% vs Model 2, -46% vs Model 1.
"""

from __future__ import annotations

from repro.experiments.paper2 import e14_model_accuracy


def test_e14_model_accuracy(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e14_model_accuracy(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["model3 P %"] <= 15.0

