"""E5: energy savings vs QoS relaxation (perfect models).

Regenerates the relaxation-sweep figure of Paper I (IPDPS 2019).
Paper headline: up to 29%, avg 17% at ~40% allowed slowdown.
"""

from __future__ import annotations

from repro.experiments.paper1 import e5_relaxation_sweep


def test_e5_relaxation_sweep(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e5_relaxation_sweep(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["avg % @40% slack"] > 5.0

