"""E8: software overhead of the Combined RMA.

Regenerates the RMA-overhead table of Paper I (IPDPS 2019).
Paper headline: < 40K instructions/invocation, ~0.04% of an interval.
"""

from __future__ import annotations

from repro.experiments.paper1 import e8_rma_overhead


def test_e8_rma_overhead(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e8_rma_overhead(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["fraction %"] < 0.1

