"""S6: many-core skewed load (inter-cluster way redistribution).

A hot strictly-QoS'd minority of cores churns while a relaxed majority
holds steady; the second-level combine must move LLC capacity from cold
clusters to hot ones.
"""

from __future__ import annotations

from repro.experiments.scenarios import s6_skewed_load


def test_s6_skewed_load(benchmark, record_artifact, ctx16):
    result = benchmark.pedantic(
        lambda: s6_skewed_load(ctx16),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert len(result.rows) == 2
    # Slack-rich cold cores give coordinated managers real headroom; both
    # tiers must convert it rather than burn more than the baseline.
    assert result.summary["rm2-combined avg savings %"] > 0.0
    assert result.summary["rm2-combined-c4 avg savings %"] > 0.0
