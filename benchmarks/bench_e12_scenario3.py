"""E12: scenario 3 energy savings.

Regenerates the scenario-3 savings figure of Paper II.
Paper headline: only RM3 effective: avg 8.5%, up to 11%.
"""

from __future__ import annotations

from repro.experiments.paper2 import e12_scenario3


def test_e12_scenario3(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e12_scenario3(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["rm3 avg %"] > 3.0
    assert result.summary["rm2 avg %"] < 2.0

