"""E9: the 16 application-type mixes and 4 scenarios.

Regenerates the trade-off analysis table of Paper II.
Paper headline: RM3 substantially better in 12 of 16 mixes.
"""

from __future__ import annotations

from repro.experiments.paper2 import e9_scenario_analysis


def test_e9_scenario_analysis(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e9_scenario_analysis(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["mixes where RM3 substantially better"] >= 9

