"""E10: scenario 1 energy savings.

Regenerates the scenario-1 savings figure of Paper II.
Paper headline: RM3 avg 14%, up to 17.6%; up to 60% larger than RM2.
"""

from __future__ import annotations

from repro.experiments.paper2 import e10_scenario1


def test_e10_scenario1(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e10_scenario1(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["rm3 avg %"] > result.summary["rm2 avg %"]

