"""E13: scenario 4 energy savings.

Regenerates the scenario-4 savings figure of Paper II.
Paper headline: neither RM2 nor RM3 effective.
"""

from __future__ import annotations

from repro.experiments.paper2 import e13_scenario4


def test_e13_scenario4(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e13_scenario4(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["rm3 avg %"] < 2.0

