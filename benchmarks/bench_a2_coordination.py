"""A2: coordinated RM2 vs independent UCP+DVFS controllers.

Regenerates the coordination ablation of Paper I (motivating claim).
Paper headline: independent controllers violate QoS on cache-sensitive apps.
"""

from __future__ import annotations

from repro.experiments.ablations import a2_coordination_value


def test_a2_coordination_value(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: a2_coordination_value(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["independent violations"] >= result.summary["rm2 violations"]

