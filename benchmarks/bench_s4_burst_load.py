"""S4: burst load (dynamic scenario engine).

One tenant, a burst filling every core, then a drain -- the diurnal-peak
shape; exercises partition hand-back on departures.
"""

from __future__ import annotations

from repro.experiments.scenarios import s4_burst_load


def test_s4_burst_load(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: s4_burst_load(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert len(result.rows) == 4
    assert result.summary["rm2-combined avg savings %"] > -1.0
