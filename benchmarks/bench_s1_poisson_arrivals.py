"""S1: open-system Poisson arrivals (dynamic scenario engine).

Tenants arrive as a Poisson process and preempt cores mid-run; managers
must re-derive energy curves as the co-location set changes.  Extension
beyond the papers' static mixes.
"""

from __future__ import annotations

from repro.experiments.scenarios import s1_poisson_arrivals


def test_s1_poisson_arrivals(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: s1_poisson_arrivals(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert len(result.rows) == 4
    # Coordinated management must not burn meaningfully more energy than the
    # static baseline even under preempting arrivals.
    assert result.summary["rm2-combined avg savings %"] > -1.0
    assert result.summary["rm3-core-adaptive avg savings %"] > -1.0
