"""A3: sensitivity to ATD set sampling.

Regenerates the ATD-sampling ablation of design choice (DESIGN.md).
Paper headline: savings are robust down to few sampled sets.
"""

from __future__ import annotations

from repro.experiments.ablations import a3_atd_sampling


def test_a3_atd_sampling(benchmark, record_artifact, record_artifact_unused=None):
    result = benchmark.pedantic(
        lambda: a3_atd_sampling(),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["64 sets avg %"] > 0.0

