"""A1: DVFS-only control saves nothing under strict QoS.

Regenerates the DVFS-only ablation of Paper I (motivating claim).
Paper headline: DVFS-only cannot save energy without degrading performance.
"""

from __future__ import annotations

from repro.experiments.ablations import a1_dvfs_only


def test_a1_dvfs_only(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: a1_dvfs_only(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["dvfs-only avg %"] < 1.0

