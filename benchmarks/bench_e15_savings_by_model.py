"""E15: RM3 energy savings by memory-stall model.

Regenerates the savings-by-model figure of Paper II.
Paper headline: weighted avg: 10% (M3) vs 7% (M2) vs 5% (M1).
"""

from __future__ import annotations

from repro.experiments.paper2 import e15_savings_by_model


def test_e15_savings_by_model(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e15_savings_by_model(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["model3 avg %"] >= result.summary["model1 avg %"] - 1.0

