"""E6: QoS relaxation on subsets of the workload.

Regenerates the partial-relaxation figure of Paper I (IPDPS 2019).
Paper headline: per-subset savings lie between all-strict and all-relaxed.
"""

from __future__ import annotations

from repro.experiments.paper1 import e6_partial_relaxation


def test_e6_partial_relaxation(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e6_partial_relaxation(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["all %"] >= result.summary["none %"] - 0.5

