"""S3: application churn (dynamic scenario engine).

Tenants depart leaving power-gated idle cores; replacements arrive later.
Idle partitions are released to the active tenants.
"""

from __future__ import annotations

from repro.experiments.scenarios import s3_churn


def test_s3_churn(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: s3_churn(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert len(result.rows) == 3
    assert result.summary["rm3-core-adaptive avg savings %"] > -1.0
