"""E3: QoS violations of the realistic Combined RMA.

Regenerates the QoS-violation table of Paper I (IPDPS 2019).
Paper headline: 13/80 violations avg 3% max 9% (4-core); 15/80 avg 3% max 7% (8-core).
"""

from __future__ import annotations

from repro.experiments.paper1 import e3_qos_violations


def test_e3_qos_violations(benchmark, record_artifact, ctx4, ctx8):
    result = benchmark.pedantic(
        lambda: e3_qos_violations(ctx4, ctx8),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    # the constant-MLP tail is slightly heavier on this substrate than in the
    # paper (max 9%); Model 3 removes it -- see the driver note and E14/E15
    assert result.summary["4-core max %"] < 18.0

