"""E16: RM3 overhead across 2/4/8-core systems.

Regenerates the overhead-scaling table of Paper II.
Paper headline: 18K / 40K / 67K instructions per invocation (< 0.1% of an interval).
"""

from __future__ import annotations

from repro.experiments.paper2 import e16_overhead_scaling


def test_e16_overhead_scaling(benchmark, record_artifact, ctx2, ctx4, ctx8):
    result = benchmark.pedantic(
        lambda: e16_overhead_scaling(ctx2, ctx4, ctx8),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert result.summary["8-core instr"] > result.summary["2-core instr"]

