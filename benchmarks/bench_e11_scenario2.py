"""E11: scenario 2 energy savings.

Regenerates the scenario-2 savings figure of Paper II.
Paper headline: RM2 and RM3 comparable, avg ~5%, up to ~10%.
"""

from __future__ import annotations

from repro.experiments.paper2 import e11_scenario2


def test_e11_scenario2(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: e11_scenario2(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert abs(result.summary["rm3 avg %"] - result.summary["rm2 avg %"]) < 4.0

