"""S2: QoS-target schedules (dynamic scenario engine).

Per-app slack ramps down (SLO hardening) and up (relaxation) mid-run; the
dynamic analogue of the static relaxation sweep (E5).
"""

from __future__ import annotations

from repro.experiments.scenarios import s2_qos_ramp


def test_s2_qos_ramp(benchmark, record_artifact, ctx4):
    result = benchmark.pedantic(
        lambda: s2_qos_ramp(ctx4),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert len(result.rows) == 4
    # Time-varying slack is headroom the managers convert into savings.
    assert result.summary["rm2-combined avg savings %"] > 0.0
