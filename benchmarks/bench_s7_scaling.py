"""S7: the scaling experiment (flat vs clustered RM2 across system sizes).

Replays the same cluster-churn shape at 8/16/32 cores under the static
baseline, flat incremental RM2 and clustered RM2; reports savings, the
clustered-vs-flat energy gap and the modelled RMA overhead per invocation.
The 64-core point is tracked by ``tools/bench_scaling.py`` and its
committed ``BENCH_scaling.json`` baseline.
"""

from __future__ import annotations

from repro.experiments.scenarios import s7_scaling


def test_s7_scaling(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: s7_scaling(),
        rounds=1,
        iterations=1,
    )
    record_artifact(result)
    assert [row[0] for row in result.rows] == [8, 16, 32]
    # The cluster way caps may cost energy, but only a bounded amount.
    assert result.summary["max |energy gap| %"] < 10.0
