"""Benchmark-harness configuration.

Each ``bench_*.py`` regenerates one table/figure of the papers (the
experiment index lives in DESIGN.md section 5).  pytest-benchmark times the
RMA-simulation phase; the rendered artefact is printed and persisted under
``benchmarks/_artifacts/``.

Fidelity defaults for the harness keep a full ``pytest benchmarks/
--benchmark-only`` run in minutes; export ``REPRO_MAX_SLICES=`` (empty) and
``REPRO_ACCESSES_PER_SET=1200`` for full-fidelity runs.

Contexts built here carry the persistent run-results store
(``.sim_cache/results/``), so re-runs of an unchanged benchmark are served
from disk and time the *store*, not the simulation; export
``REPRO_NO_RESULT_CACHE=1`` (or clear the directory) to time cold replays.
"""

from __future__ import annotations

import os

# Must be set before repro.experiments.runner is imported anywhere.
os.environ.setdefault("REPRO_MAX_SLICES", "60")
os.environ.setdefault("REPRO_ACCESSES_PER_SET", "500")

import pytest

from repro.experiments.runner import get_context

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "_artifacts")


@pytest.fixture(scope="session")
def ctx2():
    return get_context(2)


@pytest.fixture(scope="session")
def ctx4():
    return get_context(4)


@pytest.fixture(scope="session")
def ctx8():
    return get_context(8)


@pytest.fixture(scope="session")
def ctx16():
    """Many-core context for the cluster-tier scenario experiments (S5/S6)."""
    return get_context(16)


@pytest.fixture(scope="session")
def record_artifact():
    """Persist a rendered experiment table under benchmarks/_artifacts/."""

    os.makedirs(ARTIFACT_DIR, exist_ok=True)

    def _record(result):
        path = os.path.join(ARTIFACT_DIR, f"{result.experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(result.render() + "\n")
        md_path = os.path.join(ARTIFACT_DIR, f"{result.experiment_id}.md")
        with open(md_path, "w", encoding="utf-8") as fh:
            fh.write(result.markdown())
        print()
        print(result.render())
        return result

    return _record
