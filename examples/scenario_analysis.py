#!/usr/bin/env python
"""Paper II scenario analysis: when does core reconfiguration pay?

Classifies a set of benchmarks by the paper's two criteria (cache
sensitivity and parallelism sensitivity), forms one workload per scenario,
and compares the three managers:

* RM1 -- LLC partitioning only,
* RM2 -- coordinated DVFS + partitioning (Paper I),
* RM3 -- core size + DVFS + partitioning (Paper II).

Run:  python examples/scenario_analysis.py
"""

from repro import (
    Workload,
    build_database,
    compare_runs,
    default_system,
    rm1_partitioning_only,
    rm2_combined,
    rm3_core_adaptive,
    simulate_workload,
)
from repro.workloads.classification import categories_from_curves

SCENARIO_MIXES = {
    "S1 (CS + PS apps)": ("soplex_like", "gems_like", "libquantum_like", "povray_like"),
    "S2 (CS, no PS)": ("mcf_like", "omnetpp_like", "povray_like", "namd_like"),
    "S3 (PS, no CS)": ("libquantum_like", "lbm_like", "milc_like", "bwaves_like"),
    "S4 (neither)": ("povray_like", "namd_like", "sjeng_like", "gamess_like"),
}


def main() -> None:
    system = default_system(ncores=4)
    names = sorted({app for apps in SCENARIO_MIXES.values() for app in apps})
    print("building the simulation database...")
    db = build_database(system, names=names)

    print("\nderived application categories (the paper's criteria):")
    for name in names:
        cats = categories_from_curves(
            db.weighted_mpki_curve(name),
            db.weighted_mlp_grid(name),
            system.baseline_ways,
        )
        print(
            f"  {name:18s} {cats.paper1_category}  type {cats.paper2_type}"
            f"  (cache-sensitive={cats.cache_sensitive},"
            f" parallelism-sensitive={cats.parallelism_sensitive})"
        )

    managers = [
        ("RM1 partition-only", rm1_partitioning_only),
        ("RM2 +DVFS", rm2_combined),
        ("RM3 +core size", rm3_core_adaptive),
    ]
    print()
    print(f"{'scenario':22s}" + "".join(f"{m:>20s}" for m, _ in managers))
    for scenario, apps in SCENARIO_MIXES.items():
        wl = Workload(name=scenario, apps=apps)
        baseline = simulate_workload(system, db, wl, max_slices=50)
        cells = []
        for _, factory in managers:
            run = simulate_workload(system, db, wl, factory(), max_slices=50)
            cmp = compare_runs(baseline, run)
            cells.append(f"{cmp.savings_pct:18.2f}%")
        print(f"{scenario:22s}" + "".join(f"{c:>20s}" for c in cells))

    print()
    print("Expected shape (Paper II): RM3 >> RM2 in S1; RM3 ~ RM2 in S2;")
    print("only RM3 saves in S3; nothing works in S4.")


if __name__ == "__main__":
    main()
