#!/usr/bin/env python
"""Bring your own benchmark: characterise a custom application model.

The library's benchmark catalogue is generative, so adding an application is
a matter of describing its phases: locality mixture, memory intensity,
dependence structure and ILP/MLP sensitivity.  This example defines a
two-phase "key-value store" model (a hash-lookup phase with dependent misses
and a compaction phase that streams), runs the detailed-simulation step for
it directly, inspects the resulting curves, and co-runs it against catalogue
apps under the coordinated manager.

Run:  python examples/custom_benchmark.py
"""

import numpy as np

from repro import default_system
from repro.simulation.detailed import simulate_phase
from repro.workloads.phases import PhaseSpec

KV_LOOKUP = PhaseSpec(
    phase_id=0,
    base_cpi=1.05,
    ilp_sensitivity=0.3,
    apki=24.0,
    working_sets=((3, 0.40), (9, 0.40), (48, 0.20)),
    streaming_frac=0.08,
    chain_break_prob=0.25,   # hash-chain walks: mostly dependent misses
    mlp_sensitivity=0.2,
    epi_dyn=1.1,
)

KV_COMPACTION = PhaseSpec(
    phase_id=1,
    base_cpi=0.7,
    ilp_sensitivity=0.4,
    apki=30.0,
    working_sets=((1, 1.0),),
    streaming_frac=0.97,     # sequential SSTable merge: pure streaming
    chain_break_prob=0.9,
    mlp_sensitivity=0.8,
    epi_dyn=0.95,
)


def main() -> None:
    system = default_system(ncores=4)
    print("characterising the custom phases over the full (c, f, w) grid...")
    records = {
        spec.phase_id: simulate_phase(
            system, "kvstore", spec.phase_id, spec, weight=0.5
        )
        for spec in (KV_LOOKUP, KV_COMPACTION)
    }

    ways = np.arange(1, system.llc.ways + 1)
    base = system.baseline_allocation()
    for pid, label in ((0, "lookup"), (1, "compaction")):
        rec = records[pid]
        print(f"\nphase {pid} ({label}):")
        print(f"  MPKI(w):  " + " ".join(f"{m:5.1f}" for m in rec.mpki_full[::3]))
        print(f"            at ways {[int(x) for x in ways[::3]]}")
        print(f"  MLP by core size at baseline ways: "
              + ", ".join(f"{c.name}={rec.mlp_full[i, base.ways - 1]:.2f}"
                          for i, c in enumerate(system.core_sizes)))
        print(f"  TPI at baseline: {rec.tpi_at(base):.3f} ns/instr, "
              f"EPI: {rec.epi_at(base):.3f} nJ/instr")

    lookup = records[0]
    print("\nwhat the RMA would see and decide for the lookup phase:")
    snap = lookup.observe(system, base)
    from repro.core.local_opt import DimSpec, local_optimize
    from repro.core.models import Model2
    from repro.core.perf_model import predict_tpi_grid
    from repro.core.energy_model import predict_epi_grid
    from repro.core.qos import qos_target_tpi

    mlp_hat = Model2.mlp_hat(system, snap, lookup.mlp_sampled)
    tpi = predict_tpi_grid(system, snap, lookup.mpki_sampled, mlp_hat)
    epi = predict_epi_grid(system, snap, lookup.mpki_sampled, tpi)
    target = qos_target_tpi(system, tpi, slack=0.0)
    curve = local_optimize(
        system, 0, tpi, epi, target,
        DimSpec(core_indices=(system.baseline_core_index,)),
    )
    print(f"  {'ways':>4s} {'f* (GHz)':>9s} {'EPI (nJ/instr)':>15s}")
    for w in (2, 4, 8, 12, 16):
        if np.isfinite(curve.epi[w - 1]):
            f = system.vf.freqs_ghz[curve.freq_idx[w - 1]]
            print(f"  {w:4d} {f:9.1f} {curve.epi[w - 1]:15.3f}")
        else:
            print(f"  {w:4d} {'-- QoS infeasible --':>26s}")
    print("\nMore ways let the lookup phase hold its QoS at a lower VF point;")
    print("the energy curve above is exactly what the global optimiser trades.")


if __name__ == "__main__":
    main()
