#!/usr/bin/env python
"""Media-server scenario: frame-rate QoS with bounded quality relaxation.

The paper's motivating example is multimedia: "the QoS is defined as a
specific frames-per-second rate -- frame rates higher than the QoS target
will not improve user experience".  This example models a consolidation
server running a video decoder (streaming, memory-intensive), a game-engine
tick (cache-sensitive), and two batch jobs, then sweeps a *bounded* QoS
relaxation on the batch jobs only: the latency-critical apps keep strict
targets while the batch jobs may run up to 40% slower.

Shows: per-app slack (the paper's partial-relaxation study, E6) and how much
extra energy a little batch-job patience buys.

Run:  python examples/media_server_qos.py
"""

from repro import (
    Workload,
    build_database,
    compare_runs,
    default_system,
    rm2_combined,
    simulate_workload,
)

#: core -> role on the consolidation server
ROLES = {
    0: ("lbm_like", "video decoder (strict fps target)"),
    1: ("mcf_like", "game-engine tick (strict latency)"),
    2: ("gcc_like", "batch compile job"),
    3: ("namd_like", "batch simulation job"),
}


def main() -> None:
    system = default_system(ncores=4)
    apps = tuple(ROLES[j][0] for j in sorted(ROLES))
    print("building the simulation database...")
    db = build_database(system, names=sorted(set(apps)))

    print(f"{'core':>4s}  {'benchmark':16s}  role")
    for j, (app, role) in ROLES.items():
        print(f"{j:4d}  {app:16s}  {role}")
    print()

    strict = Workload(name="media-server", apps=apps)
    baseline = simulate_workload(system, db, strict, max_slices=60)

    header = f"{'batch slack':>12s}  {'savings %':>10s}  {'strict-app slowdowns':>24s}"
    print(header)
    print("-" * len(header))
    for batch_slack in (0.0, 0.1, 0.2, 0.4):
        wl = strict.with_slack((0.0, 0.0, batch_slack, batch_slack))
        run = simulate_workload(system, db, wl, rm2_combined(), max_slices=60)
        cmp = compare_runs(baseline, run)
        strict_slow = ", ".join(
            f"{v.slowdown_pct:+.1f}%" for v in cmp.violations[:2]
        )
        print(f"{batch_slack * 100:11.0f}%  {cmp.savings_pct:10.2f}  {strict_slow:>24s}")

    print()
    print("The strict apps stay at their targets while batch-job slack is")
    print("converted into lower voltage-frequency settings and cache trades.")


if __name__ == "__main__":
    main()
