#!/usr/bin/env python
"""Quickstart: save energy on a 4-core mix under per-app QoS constraints.

Walks the whole pipeline of the paper on a small example:

1. build the simulation-results database for four benchmarks
   (SimPoint phase analysis + detailed per-phase characterisation);
2. replay the multi-programmed workload under the static baseline;
3. replay it under the paper's coordinated RMA (DVFS + cache partitioning);
4. report energy savings and check every application's QoS.

Run:  python examples/quickstart.py
"""

from repro import (
    Workload,
    build_database,
    compare_runs,
    default_system,
    rm2_combined,
    simulate_workload,
)


def main() -> None:
    # The platform: 4 cores, 16-way shared LLC, 0.8-3.2 GHz DVFS.
    system = default_system(ncores=4)
    base_alloc = system.baseline_allocation()
    print(
        f"platform: {system.ncores} cores, {system.llc.ways}-way LLC, "
        f"baseline = {system.vf.freqs_ghz[base_alloc.freq]} GHz / "
        f"{base_alloc.ways} ways / {system.core_sizes[base_alloc.core].name} core"
    )

    # One cache-sensitive app (mcf), one streaming app (libquantum) and two
    # compute-bound apps: the classic mix where coordination pays.
    apps = ("mcf_like", "libquantum_like", "povray_like", "namd_like")
    print("building the simulation database (SimPoint + detailed simulation)...")
    db = build_database(system, names=list(apps))

    workload = Workload(name="quickstart", apps=apps)

    print("replaying the baseline (QoS anchor)...")
    baseline = simulate_workload(system, db, workload, max_slices=60)

    print("replaying under the coordinated RMA (Paper I's Combined scheme)...")
    managed = simulate_workload(system, db, workload, rm2_combined(), max_slices=60)

    result = compare_runs(baseline, managed)
    print()
    print(f"system energy saved: {result.savings_pct:.2f}%")
    print(f"{'app':18s} {'QoS':>10s}  slowdown vs baseline")
    for v in result.violations:
        status = "VIOLATED" if v.violated else "met"
        print(f"{v.app:18s} {status:>10s}  {v.slowdown_pct:+.2f}%")
    print()
    print(
        f"RMA invocations: {managed.rma_invocations}, "
        f"avg {managed.rma_instructions / managed.rma_invocations:,.0f} "
        "instruction-equivalents each"
    )


if __name__ == "__main__":
    main()
